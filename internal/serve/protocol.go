package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/npb"
	"repro/internal/report"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The want values a query may ask for.
const (
	// WantLatency runs the cycle-accurate simulator and reports packet
	// latency (the default).
	WantLatency = "latency"
	// WantCLEAR additionally evaluates the paper's eq. 2 figure of merit
	// from the measured run.
	WantCLEAR = "clear"
	// WantEnergy additionally prices the run with the activity-based
	// energy model (measured fJ/bit, component energies).
	WantEnergy = "energy"
)

// Error codes. Every rejected request carries exactly one of these; codes
// are stable protocol surface, messages are free-form (and list the
// registered names where a registry lookup failed, mirroring the CLIs).
const (
	CodeBadJSON        = "bad_json"
	CodeUnknownField   = "unknown_field"
	CodeUnknownKind    = "unknown_kind"
	CodeUnknownPattern = "unknown_pattern"
	CodeUnknownKernel  = "unknown_kernel"
	CodeUnknownTech    = "unknown_tech"
	CodeBadLoad        = "bad_load"
	CodeBadWant        = "bad_want"
	CodeBadGeometry    = "bad_geometry"
	CodeBadRequest     = "bad_request"
	CodeQueueFull      = "queue_full"
	CodeEvalFailed     = "eval_failed"
	CodeCanceled       = "canceled"
	CodeDraining       = "draining"
)

// Request is one estimation query: a topology kind, a design point, a
// traffic source (synthetic pattern or built-in NPB kernel trace) and the
// figure wanted. The zero value of every optional field selects the
// documented default, so the minimal valid query is
// {"pattern":"uniform","load":0.05}.
type Request struct {
	// ID is an opaque client tag echoed verbatim in the response.
	ID string `json:"id,omitempty"`
	// Topology is the registered kind name (default "mesh").
	Topology string `json:"topology,omitempty"`
	// Width and Height give the router grid (default 8×8).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Base is the mesh channel technology (default "Electronic").
	Base string `json:"base,omitempty"`
	// Express is the express channel technology (default: Base).
	Express string `json:"express,omitempty"`
	// Hops is the express hop length (0 = no express channels).
	Hops int `json:"hops,omitempty"`
	// Pattern names a registered synthetic pattern. Exactly one of
	// Pattern and Kernel must be set.
	Pattern string `json:"pattern,omitempty"`
	// Kernel names a built-in NPB trace (FT, CG, MG, LU and the EP, IS
	// extensions) replayed at the kernel's fixed volume; Load must be
	// omitted.
	Kernel string `json:"kernel,omitempty"`
	// Load is the offered peak per-node injection rate in flits/cycle,
	// required in (0, 1] for pattern queries.
	Load float64 `json:"load,omitempty"`
	// Want selects the figure: latency (default), clear or energy.
	Want string `json:"want,omitempty"`
}

// Error is a structured rejection: a stable code, the offending field
// when one is identifiable, and a human-readable message.
type Error struct {
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s (%s): %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

func errf(code, field, format string, args ...any) *Error {
	return &Error{Code: code, Field: field, Message: fmt.Sprintf(format, args...)}
}

// Result is the successful payload. Fields beyond the echoed query and
// the latency block are populated according to Want.
type Result struct {
	// Topology through Want echo the canonicalized query, so a response
	// is self-describing even without an ID.
	Topology string  `json:"topology"`
	Point    string  `json:"point"`
	Width    int     `json:"width"`
	Height   int     `json:"height"`
	Pattern  string  `json:"pattern,omitempty"`
	Kernel   string  `json:"kernel,omitempty"`
	Load     float64 `json:"load,omitempty"`
	Want     string  `json:"want"`
	// Saturated marks runs that failed to drain within the cycle cap;
	// latency then reflects the aborted horizon and pricing is omitted.
	Saturated bool `json:"saturated,omitempty"`
	// The measured latency block (all Want values).
	AvgLatencyClks float64 `json:"avg_latency_clks,omitempty"`
	P99LatencyClks float64 `json:"p99_latency_clks,omitempty"`
	Cycles         int64   `json:"cycles,omitempty"`
	Packets        int64   `json:"packets,omitempty"`
	// The measured energy block (want: energy).
	FJPerBit  float64 `json:"fj_per_bit,omitempty"`
	DynamicJ  float64 `json:"dynamic_j,omitempty"`
	StaticJ   float64 `json:"static_j,omitempty"`
	TotalJ    float64 `json:"total_j,omitempty"`
	AvgPowerW float64 `json:"avg_power_w,omitempty"`
	// The simulated CLEAR block (want: clear or energy).
	CLEAR          float64 `json:"clear,omitempty"`
	R              float64 `json:"r,omitempty"`
	AvgUtilization float64 `json:"avg_utilization,omitempty"`
}

// Response is one reply line: ok with a result, or not ok with an error.
type Response struct {
	ID     string  `json:"id,omitempty"`
	OK     bool    `json:"ok"`
	Result *Result `json:"result,omitempty"`
	Error  *Error  `json:"error,omitempty"`
}

// Encode renders the response as its canonical single JSON line (no
// trailing newline). The encoding is byte-stable: identical responses
// encode to identical bytes (see report.JSONLine).
func (r Response) Encode() []byte {
	line, err := report.JSONLine(r)
	if err != nil {
		// Response trees contain only marshalable fields; reaching here
		// is a programming error worth failing loudly over.
		panic(fmt.Sprintf("serve: unencodable response: %v", err))
	}
	return line
}

// errResponse builds the rejection reply for a request (zero ID allowed).
func errResponse(id string, e *Error) Response {
	return Response{ID: id, OK: false, Error: e}
}

// DecodeRequest parses one JSON-line request. Rejections are structured:
// malformed JSON is CodeBadJSON, a field of the wrong type is CodeBadJSON
// naming the field, an unrecognized field is CodeUnknownField naming it.
// The partially decoded request is returned even on error so callers can
// echo an ID when one was readable.
func DecodeRequest(line []byte) (Request, *Error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var typeErr *json.UnmarshalTypeError
		if errors.As(err, &typeErr) {
			return req, errf(CodeBadJSON, typeErr.Field,
				"field %q wants %s, got JSON %s", typeErr.Field, typeErr.Type, typeErr.Value)
		}
		if name, ok := unknownFieldName(err); ok {
			field := name
			if field == "" {
				// JSON allows "" as a key; name it by its quoted spelling
				// so the rejection still points somewhere.
				field = `""`
			}
			return req, errf(CodeUnknownField, field,
				"unknown field %q (known: id, topology, width, height, base, express, hops, pattern, kernel, load, want)", name)
		}
		return req, errf(CodeBadJSON, "", "malformed JSON request: %v", err)
	}
	// One object per line: trailing tokens are a framing error, not a
	// second request.
	if dec.More() {
		return req, errf(CodeBadJSON, "", "trailing data after JSON request")
	}
	return req, nil
}

// unknownFieldName extracts the field from encoding/json's (unexported)
// unknown-field error.
func unknownFieldName(err error) (string, bool) {
	const prefix = `json: unknown field "`
	s := err.Error()
	if !strings.HasPrefix(s, prefix) {
		return "", false
	}
	return strings.TrimSuffix(strings.TrimPrefix(s, prefix), `"`), true
}

// Canonical validates the request and folds every field to its canonical
// spelling (registry-cased names, defaults applied), so equivalent
// queries — {"pattern":"uniform"} vs {"topology":"MESH","base":"E",...} —
// share one cache identity. maxNodes bounds Width×Height.
func (r Request) Canonical(maxNodes int) (Request, *Error) {
	c := r
	switch c.Want {
	case "":
		c.Want = WantLatency
	case WantLatency, WantCLEAR, WantEnergy:
	default:
		return c, errf(CodeBadWant, "want",
			"unknown want %q (known: %s, %s, %s)", c.Want, WantLatency, WantCLEAR, WantEnergy)
	}

	spec, err := topology.LookupKind(c.Topology)
	if err != nil {
		return c, errf(CodeUnknownKind, "topology", "%v", err)
	}
	c.Topology = string(spec.Name)

	if c.Width == 0 && c.Height == 0 {
		c.Width, c.Height = DefaultWidth, DefaultHeight
	}
	if c.Width < 2 || c.Height < 1 {
		field := "width"
		if c.Width >= 2 {
			field = "height"
		}
		return c, errf(CodeBadGeometry, field, "grid %dx%d too small", c.Width, c.Height)
	}
	if maxNodes > 0 && c.Width*c.Height > maxNodes {
		return c, errf(CodeBadGeometry, "width",
			"grid %dx%d exceeds the server's %d-node bound", c.Width, c.Height, maxNodes)
	}
	if c.Hops < 0 {
		return c, errf(CodeBadGeometry, "hops", "negative express hops %d", c.Hops)
	}

	if c.Base == "" {
		c.Base = tech.Electronic.String()
	}
	base, err := tech.ParseTechnology(c.Base)
	if err != nil {
		return c, errf(CodeUnknownTech, "base", "%v (known: %s)", err, techNames())
	}
	c.Base = base.String()
	if c.Express == "" {
		c.Express = c.Base
	}
	express, err := tech.ParseTechnology(c.Express)
	if err != nil {
		return c, errf(CodeUnknownTech, "express", "%v (known: %s)", err, techNames())
	}
	c.Express = express.String()
	if c.Hops == 0 {
		// Without express channels the express technology is unused;
		// fold it so all plain variants share one cache identity.
		c.Express = c.Base
	}

	switch {
	case c.Pattern == "" && c.Kernel == "":
		return c, errf(CodeBadRequest, "pattern",
			"one of pattern (known: %s) or kernel (known: %s) is required",
			strings.Join(traffic.Names(), ", "), kernelNames())
	case c.Pattern != "" && c.Kernel != "":
		return c, errf(CodeBadRequest, "kernel", "pattern and kernel are mutually exclusive")
	case c.Pattern != "":
		p, err := traffic.Lookup(c.Pattern)
		if err != nil {
			return c, errf(CodeUnknownPattern, "pattern", "%v", err)
		}
		c.Pattern = p.Name()
		if math.IsNaN(c.Load) || c.Load <= 0 || c.Load > 1 {
			return c, errf(CodeBadLoad, "load",
				"pattern queries need load in (0, 1] flits/cycle, got %v", c.Load)
		}
	default:
		k, err := npb.ParseKernel(c.Kernel)
		if err != nil {
			return c, errf(CodeUnknownKernel, "kernel", "%v (known: %s)", err, kernelNames())
		}
		c.Kernel = k.String()
		if c.Load != 0 {
			return c, errf(CodeBadLoad, "load",
				"kernel queries replay the trace's fixed volume; omit load (got %v)", c.Load)
		}
	}
	return c, nil
}

// kernelNames lists the parseable NPB kernels (paper set plus
// extensions) for error messages.
func kernelNames() string {
	all := append(append([]npb.Kernel{}, npb.Kernels...), npb.ExtensionKernels...)
	names := make([]string, len(all))
	for i, k := range all {
		names[i] = k.String()
	}
	return strings.Join(names, ", ")
}

// techNames lists the parseable technologies for error messages.
func techNames() string {
	names := make([]string, len(tech.Technologies))
	for i, t := range tech.Technologies {
		names[i] = t.String()
	}
	return strings.Join(names, ", ")
}

// key is the cache identity of a canonicalized request: every field but
// the client's opaque ID.
func (r Request) key() string {
	return fmt.Sprintf("%s|%dx%d|%s|%s|%d|%s|%s|%g|%s",
		r.Topology, r.Width, r.Height, r.Base, r.Express, r.Hops,
		r.Pattern, r.Kernel, r.Load, r.Want)
}
