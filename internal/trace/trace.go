// Package trace defines the message-trace format the NoC experiments
// consume, plays the role of the paper's MPICL→BookSim trace conversion, and
// packetizes messages the way the paper describes: traffic is split into
// 32-flit packets plus a small trailing packet, injected at the source at a
// rate respecting the 50 Gb/s channel bandwidth (one 64-bit flit per cycle).
//
// The text format is line oriented:
//
//	# comment
//	<cycle> <src> <dst> <bytes>
//
// with all fields base-10 integers. Events need not be sorted; consumers
// sort by cycle.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/noc"
	"repro/internal/topology"
)

// Event is one traced message: at Cycle, rank Src sends Bytes to rank Dst.
type Event struct {
	Cycle    int64
	Src, Dst int
	Bytes    int64
}

// Write emits events in the text format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# cycle src dst bytes"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", e.Cycle, e.Src, e.Dst, e.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format, skipping blank lines and # comments.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var e Event
		if _, err := fmt.Sscanf(line, "%d %d %d %d", &e.Cycle, &e.Src, &e.Dst, &e.Bytes); err != nil {
			return nil, fmt.Errorf("trace: line %d: %q: %w", lineNo, line, err)
		}
		if e.Cycle < 0 || e.Src < 0 || e.Dst < 0 || e.Bytes <= 0 {
			return nil, fmt.Errorf("trace: line %d: invalid event %+v", lineNo, e)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// PacketizeConfig controls message → packet conversion.
type PacketizeConfig struct {
	// FlitBytes is the payload per flit (Table II: 64-bit flits = 8 B).
	FlitBytes int
	// LargeFlits is the long packet size (the paper: 32 flits).
	LargeFlits int
}

// DefaultPacketize returns the paper's packetization: 8-byte flits, 32-flit
// large packets.
func DefaultPacketize() PacketizeConfig {
	return PacketizeConfig{FlitBytes: 8, LargeFlits: 32}
}

// Validate checks the configuration.
func (c PacketizeConfig) Validate() error {
	if c.FlitBytes <= 0 || c.LargeFlits <= 0 {
		return fmt.Errorf("trace: invalid packetize config %+v", c)
	}
	return nil
}

// FlitCount returns the number of flits needed for a message of the given
// size: ceil(bytes / FlitBytes).
func (c PacketizeConfig) FlitCount(bytes int64) int64 {
	fb := int64(c.FlitBytes)
	return (bytes + fb - 1) / fb
}

// Packetize converts messages into simulator packets, splitting each message
// into LargeFlits-sized packets plus one trailing packet with the remaining
// flits (the paper: "all large packets were split up into smaller packets").
// Consecutive packets of one message are released one serialization delay
// apart so a source never exceeds one flit per cycle, mirroring the paper's
// bandwidth-respecting injection.
func Packetize(events []Event, nodes int, cfg PacketizeConfig) ([]noc.Packet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })

	// nextFree[src] tracks when the source's injection channel frees up.
	nextFree := make(map[int]int64, nodes)
	var packets []noc.Packet
	for _, e := range sorted {
		if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
			return nil, fmt.Errorf("trace: event endpoints %d->%d out of %d nodes", e.Src, e.Dst, nodes)
		}
		if e.Bytes <= 0 {
			return nil, fmt.Errorf("trace: non-positive message size %d", e.Bytes)
		}
		flits := cfg.FlitCount(e.Bytes)
		release := e.Cycle
		if nf := nextFree[e.Src]; nf > release {
			release = nf
		}
		for flits > 0 {
			size := int64(cfg.LargeFlits)
			if flits < size {
				size = flits
			}
			packets = append(packets, noc.Packet{
				Src:       topology.NodeID(e.Src),
				Dst:       topology.NodeID(e.Dst),
				SizeFlits: int(size),
				Release:   release,
			})
			release += size // serialization at 1 flit/cycle
			flits -= size
		}
		nextFree[e.Src] = release
	}
	return packets, nil
}

// TotalFlits sums the flit counts of a packet batch.
func TotalFlits(packets []noc.Packet) int64 {
	var total int64
	for _, p := range packets {
		total += int64(p.SizeFlits)
	}
	return total
}

// TotalBytes sums message sizes of an event batch.
func TotalBytes(events []Event) int64 {
	var total int64
	for _, e := range events {
		total += e.Bytes
	}
	return total
}
