package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func TestCodecRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Src: 0, Dst: 255, Bytes: 2048},
		{Cycle: 17, Src: 12, Dst: 13, Bytes: 8},
		{Cycle: 1 << 40, Src: 255, Dst: 0, Bytes: 1 << 30},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0 1 2 64\n   \n# trailing\n5 2 1 8\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (Event{0, 1, 2, 64}) || got[1] != (Event{5, 2, 1, 8}) {
		t.Errorf("got %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"1 2 3\n",    // missing field
		"a b c d\n",  // not numbers
		"-1 0 1 8\n", // negative cycle
		"0 0 1 0\n",  // zero bytes
		"0 -2 1 8\n", // negative src
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should be rejected", in)
		}
	}
}

// TestPacketizeSplitsLikeThePaper: a 2 KiB message on 8-byte flits becomes
// eight 32-flit packets; a 300-byte message becomes one 32-flit packet plus
// a 6-flit trailer.
func TestPacketizeSplitsLikeThePaper(t *testing.T) {
	cfg := DefaultPacketize()
	pkts, err := Packetize([]Event{{Cycle: 0, Src: 1, Dst: 2, Bytes: 2048}}, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 8 {
		t.Fatalf("2048 B should be 8 packets, got %d", len(pkts))
	}
	for i, p := range pkts {
		if p.SizeFlits != 32 {
			t.Errorf("packet %d size %d, want 32", i, p.SizeFlits)
		}
		if p.Release != int64(i*32) {
			t.Errorf("packet %d release %d, want %d (bandwidth-respecting)", i, p.Release, i*32)
		}
	}
	pkts, err = Packetize([]Event{{Cycle: 10, Src: 0, Dst: 3, Bytes: 300}}, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 || pkts[0].SizeFlits != 32 || pkts[1].SizeFlits != 6 {
		t.Fatalf("300 B: got %+v", pkts)
	}
	if pkts[0].Release != 10 || pkts[1].Release != 42 {
		t.Errorf("releases %d, %d; want 10, 42", pkts[0].Release, pkts[1].Release)
	}
}

// TestPacketizeConservesFlits: total flits == ceil(bytes/8) per message.
func TestPacketizeConservesFlits(t *testing.T) {
	cfg := DefaultPacketize()
	f := func(rawBytes uint32) bool {
		b := int64(rawBytes%100000) + 1
		pkts, err := Packetize([]Event{{Cycle: 0, Src: 0, Dst: 1, Bytes: b}}, 4, cfg)
		if err != nil {
			return false
		}
		return TotalFlits(pkts) == cfg.FlitCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPacketizeSerializesPerSource: two back-to-back messages from one
// source never overlap their injection windows.
func TestPacketizeSerializesPerSource(t *testing.T) {
	cfg := DefaultPacketize()
	events := []Event{
		{Cycle: 0, Src: 0, Dst: 1, Bytes: 2048}, // 256 flits: busy until 256
		{Cycle: 5, Src: 0, Dst: 2, Bytes: 256},  // must wait
		{Cycle: 5, Src: 3, Dst: 2, Bytes: 256},  // other source: immediate
	}
	pkts, err := Packetize(events, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var src0Second, src3 noc.Packet
	for _, p := range pkts {
		if p.Src == 0 && p.Dst == 2 {
			src0Second = p
		}
		if p.Src == 3 {
			src3 = p
		}
	}
	if src0Second.Release != 256 {
		t.Errorf("second message from src 0 released at %d, want 256", src0Second.Release)
	}
	if src3.Release != 5 {
		t.Errorf("src 3 message released at %d, want 5", src3.Release)
	}
}

func TestPacketizeValidation(t *testing.T) {
	cfg := DefaultPacketize()
	if _, err := Packetize([]Event{{Cycle: 0, Src: 99, Dst: 0, Bytes: 8}}, 16, cfg); err == nil {
		t.Error("out-of-range src must fail")
	}
	if _, err := Packetize([]Event{{Cycle: 0, Src: 0, Dst: 0, Bytes: 0}}, 16, cfg); err == nil {
		t.Error("zero bytes must fail")
	}
	bad := PacketizeConfig{FlitBytes: 0, LargeFlits: 32}
	if _, err := Packetize(nil, 16, bad); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestTotalBytes(t *testing.T) {
	if got := TotalBytes([]Event{{Bytes: 5}, {Bytes: 7}}); got != 12 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestFlitCount(t *testing.T) {
	cfg := DefaultPacketize()
	cases := map[int64]int64{1: 1, 8: 1, 9: 2, 64: 8, 2048: 256}
	for b, want := range cases {
		if got := cfg.FlitCount(b); got != want {
			t.Errorf("FlitCount(%d) = %d, want %d", b, got, want)
		}
	}
}
