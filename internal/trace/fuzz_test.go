package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the trace parser with arbitrary input: it must never
// panic, and anything it accepts must round-trip through Write/Read.
func FuzzRead(f *testing.F) {
	f.Add("# comment\n0 1 2 64\n")
	f.Add("5 0 0 8\n\n\n")
	f.Add("9999999999999 255 254 1048576\n")
	f.Add("-1 0 0 8\n")
	f.Add("a b c d\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		events, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, e := range events {
			if e.Cycle < 0 || e.Src < 0 || e.Dst < 0 || e.Bytes <= 0 {
				t.Fatalf("accepted invalid event %+v", e)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, events); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round-trip lost events: %d -> %d", len(events), len(back))
		}
		for i := range events {
			if back[i] != events[i] {
				t.Fatalf("round-trip changed event %d: %+v -> %+v", i, events[i], back[i])
			}
		}
	})
}
