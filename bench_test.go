// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark regenerates its dataset and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reprints the paper's results next to wall-clock cost. Trace-driven
// benchmarks run at a reduced NPB scale (the cmd/ tools run full scale).
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/dsent"
	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/optical"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
	"repro/internal/taskgraph"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
)

// BenchmarkFig3LinkCLEAR regenerates the link-level CLEAR curves and
// reports where the electronic→HyPPI crossover falls (paper: between
// intra-processor and inter-core distances).
func BenchmarkFig3LinkCLEAR(b *testing.B) {
	var crossoverM float64
	for i := 0; i < b.N; i++ {
		pts, err := link.Sweep(link.Fig3Lengths())
		if err != nil {
			b.Fatal(err)
		}
		crossoverM = 0
		for _, p := range pts {
			if p.Best() == tech.HyPPI {
				crossoverM = p.LengthM
				break
			}
		}
	}
	b.ReportMetric(crossoverM/units.Micrometre, "crossover_µm")
}

// BenchmarkTableIIICapabilityR regenerates Table III: capability C and
// utilization growth R for the plain mesh and the three express hop
// lengths.
func BenchmarkTableIIICapabilityR(b *testing.B) {
	o := core.DefaultOptions()
	pts := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 5},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 15},
	}
	var res []core.ExplorationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Explore(pts, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res[0].CapabilityGbpsPerNode, "C_plain_Gbps")
	b.ReportMetric(res[1].CapabilityGbpsPerNode, "C_h3_Gbps")
	b.ReportMetric(res[0].R, "R_plain")
	b.ReportMetric(res[1].R, "R_h3")
	b.ReportMetric(res[3].R, "R_h15")
}

// BenchmarkFig5DesignSpace regenerates the full 30-point Fig. 5 grid and
// reports the paper's headline CLEAR improvement (E base + HyPPI express @3
// vs plain E mesh; paper: up to 1.8×).
func BenchmarkFig5DesignSpace(b *testing.B) {
	o := core.DefaultOptions()
	var headline float64
	for i := 0; i < b.N; i++ {
		res, err := core.Explore(core.DefaultDesignSpace(), o)
		if err != nil {
			b.Fatal(err)
		}
		ratios := core.CLEARRatioVsPlain(res)
		headline = ratios[core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}]
	}
	b.ReportMetric(headline, "CLEAR_ratio_EH3")
}

// BenchmarkTableIVStaticPower regenerates the static power table (paper:
// E base 1.53 W; photonic express ≈3.08 W @3 hops; HyPPI ≈1.545 W).
func BenchmarkTableIVStaticPower(b *testing.B) {
	o := core.DefaultOptions()
	pts := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.Photonic, Hops: 3},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	var res []core.ExplorationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Explore(pts, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res[0].StaticW, "static_base_W")
	b.ReportMetric(res[1].StaticW, "static_photonic_h3_W")
	b.ReportMetric(res[2].StaticW, "static_hyppi_h3_W")
}

// BenchmarkFig5SweepWorkers measures the parallel experiment engine on the
// full 30-point Fig. 5 sweep across pool sizes: workers=1 is the serial
// baseline, the larger pools show the wall-clock speedup of the
// embarrassingly-parallel runner (bounded by available cores — compare the
// points/s metric between sub-benchmarks). Results are bit-identical at
// every pool size.
func BenchmarkFig5SweepWorkers(b *testing.B) {
	o := core.DefaultOptions()
	pts := core.DefaultDesignSpace()
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		counts = append(counts, g)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.ExploreContext(context.Background(), pts, o,
					runner.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(pts) {
					b.Fatalf("%d results", len(res))
				}
			}
			b.ReportMetric(float64(len(pts))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkTraceBatchWorkers measures the worker pool on a batch of
// cycle-accurate trace simulations (the Fig. 6 shape): four LU runs at
// reduced scale, serial vs pooled.
func BenchmarkTraceBatchWorkers(b *testing.B) {
	o := core.DefaultOptions()
	var jobs []core.TraceJob
	for _, hops := range []int{0, 3, 5, 15} {
		jobs = append(jobs, core.TraceJob{Kernel: benchTraceCfg(npb.LU), Point: core.DesignPoint{
			Base: tech.Electronic, Express: tech.HyPPI, Hops: hops}})
	}
	counts := []int{1, 4}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunTraceExperiments(context.Background(), jobs, o,
					noc.DefaultConfig(), runner.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(jobs) {
					b.Fatalf("%d results", len(res))
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
		})
	}
}

// benchTraceCfg returns the reduced-scale NPB config used by the
// trace-driven benchmarks.
func benchTraceCfg(k npb.Kernel) npb.Config {
	cfg := npb.DefaultConfig(k)
	cfg.Scale = 1.0 / 64
	cfg.Iterations = 1
	return cfg
}

// BenchmarkFig6NPBLatency regenerates the Fig. 6 latency bars per kernel
// (reduced scale), reporting mesh latency and the best express speedup.
func BenchmarkFig6NPBLatency(b *testing.B) {
	o := core.DefaultOptions()
	for _, k := range npb.Kernels {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var mesh, best float64
			for i := 0; i < b.N; i++ {
				lat := map[int]float64{}
				for _, hops := range []int{0, 3, 5, 15} {
					point := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: hops}
					res, err := core.RunTraceExperiment(benchTraceCfg(k), point, o, noc.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					lat[hops] = res.AvgLatencyClks
				}
				mesh = lat[0]
				best = 0
				for _, hops := range []int{3, 5, 15} {
					if s := lat[0] / lat[hops]; s > best {
						best = s
					}
				}
			}
			b.ReportMetric(mesh, "mesh_latency_clks")
			b.ReportMetric(best, "best_speedup_x")
		})
	}
}

// BenchmarkTableVDynamicEnergy regenerates the FT dynamic-energy comparison
// (reduced scale): electronic vs photonic vs HyPPI express at 3 hops
// (paper: 0.0054 / 0.9353 / 0.0049 J, base mesh 0.0042 J).
func BenchmarkTableVDynamicEnergy(b *testing.B) {
	o := core.DefaultOptions()
	var base, elec, photonic, hyppi float64
	for i := 0; i < b.N; i++ {
		run := func(p core.DesignPoint) float64 {
			res, err := core.RunTraceExperiment(benchTraceCfg(npb.FT), p, o, noc.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			return res.DynamicEnergyJ
		}
		base = run(core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 0})
		elec = run(core.DesignPoint{Base: tech.Electronic, Express: tech.Electronic, Hops: 3})
		photonic = run(core.DesignPoint{Base: tech.Electronic, Express: tech.Photonic, Hops: 3})
		hyppi = run(core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3})
	}
	b.ReportMetric(base*1e6, "base_µJ")
	b.ReportMetric(elec*1e6, "elec_h3_µJ")
	b.ReportMetric(photonic*1e6, "photonic_h3_µJ")
	b.ReportMetric(hyppi*1e6, "hyppi_h3_µJ")
}

// BenchmarkTableVIRouters regenerates the optical router comparison and the
// optimal port assignment cost.
func BenchmarkTableVIRouters(b *testing.B) {
	var w optical.TurnWeights
	w[optical.West][optical.East] = 10
	w[optical.East][optical.West] = 10
	w[optical.North][optical.South] = 3
	w[optical.South][optical.North] = 3
	w[optical.Local][optical.East] = 1
	w[optical.West][optical.Local] = 1
	var hyppiCost, photonicCost float64
	for i := 0; i < b.N; i++ {
		_, hyppiCost = optical.HyPPIRouter().OptimalAssignment(w)
		_, photonicCost = optical.PhotonicRouter().OptimalAssignment(w)
	}
	b.ReportMetric(hyppiCost, "hyppi_mean_loss_dB")
	b.ReportMetric(photonicCost, "photonic_mean_loss_dB")
}

// BenchmarkFig8AllOptical regenerates the radar projections, reporting the
// two headline ratios (paper: optical ≈255× more energy efficient than
// electronics; all-HyPPI ≈100× smaller than all-photonic).
func BenchmarkFig8AllOptical(b *testing.B) {
	o := core.DefaultOptions()
	var radar optical.Radar
	for i := 0; i < b.N; i++ {
		var err error
		radar, err = core.AllOpticalRadar(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(radar.Electronic.EnergyPerBitJ/radar.HyPPI.EnergyPerBitJ, "energy_ratio_E_vs_HyPPI")
	b.ReportMetric(radar.Photonic.AreaM2/radar.HyPPI.AreaM2, "area_ratio_P_vs_HyPPI")
	b.ReportMetric(radar.HyPPI.AreaM2/units.MillimetreSq, "hyppi_area_mm2")
}

// BenchmarkAblationInjectionSweep sweeps the injection rate 0.01→0.1
// (paper: only a small CLEAR reduction) and reports the ratio.
func BenchmarkAblationInjectionSweep(b *testing.B) {
	net := topology.MustBuild(topology.DefaultConfig())
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	base := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	params := analytic.DefaultParams()
	var ratio float64
	for i := 0; i < b.N; i++ {
		lo, err := analytic.Evaluate(net, tab, base.ScaledToMaxRate(0.01), params)
		if err != nil {
			b.Fatal(err)
		}
		hi, err := analytic.Evaluate(net, tab, base.ScaledToMaxRate(0.1), params)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lo.CLEAR / hi.CLEAR
	}
	b.ReportMetric(ratio, "CLEAR_r0.01_over_r0.1")
}

// BenchmarkAblationRoutingPolicy compares the deadlock-free monotone policy
// against BookSim-style BFS shortest hops on the hops=5 hybrid: BFS finds
// shorter routes via express on-ramps at the price of deadlock risk in a
// real router (the simulator only runs the monotone policy).
func BenchmarkAblationRoutingPolicy(b *testing.B) {
	c := topology.DefaultConfig()
	c.ExpressTech = tech.HyPPI
	c.ExpressHops = 5
	net := topology.MustBuild(c)
	tm := traffic.MustSoteriou(net, traffic.DefaultSoteriou())
	params := analytic.DefaultParams()
	var dMono, dBFS float64
	for i := 0; i < b.N; i++ {
		mono, err := analytic.Evaluate(net, routing.MustBuild(net, routing.MonotoneExpress), tm, params)
		if err != nil {
			b.Fatal(err)
		}
		bfs, err := analytic.Evaluate(net, routing.MustBuild(net, routing.ShortestHops), tm, params)
		if err != nil {
			b.Fatal(err)
		}
		dMono, dBFS = mono.MeanHops, bfs.MeanHops
	}
	b.ReportMetric(dMono, "mean_hops_monotone")
	b.ReportMetric(dBFS, "mean_hops_bfs")
}

// BenchmarkSimulatorThroughput measures the raw cycle-accurate simulator
// speed in flit-hops per second on uniform traffic.
func BenchmarkSimulatorThroughput(b *testing.B) {
	net := topology.MustBuild(topology.DefaultConfig())
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	cfg := npb.DefaultConfig(npb.MG)
	cfg.Scale = 1.0 / 32
	events := npb.MustGenerate(cfg)
	var flitHops float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := noc.New(net, tab, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		pkts, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			b.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		var hops int64
		for _, v := range st.LinkFlits {
			hops += v
		}
		flitHops = float64(hops)
	}
	b.ReportMetric(flitHops*float64(b.N)/b.Elapsed().Seconds(), "flit-hops/s")
}

// BenchmarkSimulatorThroughputReuse is BenchmarkSimulatorThroughput on the
// Sim.Reset reuse path: one simulator recycled through a SimPool across
// iterations, isolating the construction cost the pool removes from every
// sweep point after the first.
func BenchmarkSimulatorThroughputReuse(b *testing.B) {
	net := topology.MustBuild(topology.DefaultConfig())
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	cfg := npb.DefaultConfig(npb.MG)
	cfg.Scale = 1.0 / 32
	events := npb.MustGenerate(cfg)
	pool := noc.NewSimPool()
	var flitHops float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := pool.Get(net, tab, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		pkts, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.InjectAll(pkts); err != nil {
			b.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(sim)
		var hops int64
		for _, v := range st.LinkFlits {
			hops += v
		}
		flitHops = float64(hops)
	}
	b.ReportMetric(flitHops*float64(b.N)/b.Elapsed().Seconds(), "flit-hops/s")
}

// BenchmarkEnergyAccounting measures the activity-based energy subsystem:
// one measured MG trace run on the 16×16 E + HyPPI express@3 hybrid is
// priced per iteration (the coefficient fold over ~1100 link counters plus
// the census scalars), reporting the run's measured fJ/bit and average
// power as metrics. Model construction is outside the timed loop, like
// network construction in the sweep benchmarks.
func BenchmarkEnergyAccounting(b *testing.B) {
	c := topology.DefaultConfig()
	c.ExpressTech = tech.HyPPI
	c.ExpressHops = 3
	net := topology.MustBuild(c)
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	cfg := npb.DefaultConfig(npb.MG)
	cfg.Scale = 1.0 / 32
	events := npb.MustGenerate(cfg)
	sim, err := noc.New(net, tab, noc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pkts, err := trace.Packetize(events, net.NumNodes(), trace.DefaultPacketize())
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.InjectAll(pkts); err != nil {
		b.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	model, err := energy.NewModel(net, dsent.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var run energy.RunEnergy
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err = model.Price(st)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.FJPerBit, "fJ/bit")
	b.ReportMetric(run.AvgPowerW, "avg_W")
}

// BenchmarkExtensionWDMSweep quantifies the paper's wavelength-count
// argument: photonic link static power as rings are added beyond the
// 2-λ minimum, with capacity pinned by the SERDES.
func BenchmarkExtensionWDMSweep(b *testing.B) {
	cfg := dsent.DefaultConfig()
	var w2, w8 float64
	for i := 0; i < b.N; i++ {
		l2, err := dsent.LinkWDM(cfg, tech.Photonic, units.Millimetre, 2)
		if err != nil {
			b.Fatal(err)
		}
		l8, err := dsent.LinkWDM(cfg, tech.Photonic, units.Millimetre, 8)
		if err != nil {
			b.Fatal(err)
		}
		w2, w8 = l2.StaticW, l8.StaticW
	}
	b.ReportMetric(w2*1e3, "static_2λ_mW")
	b.ReportMetric(w8*1e3, "static_8λ_mW")
}

// BenchmarkExtensionExpress2D evaluates the "express cube" extension the
// paper declines (express links in both dimensions, 9-port routers):
// CLEAR and latency vs the paper's horizontal-only hybrid.
func BenchmarkExtensionExpress2D(b *testing.B) {
	o := core.DefaultOptions()
	params := analytic.Params{DSENT: o.DSENT, RouterPipelineClks: o.RouterPipelineClks}
	var clear1, clear2, lat1, lat2 float64
	for i := 0; i < b.N; i++ {
		eval := func(both bool) analytic.Result {
			c := o.Topology
			c.BaseTech = tech.Electronic
			c.ExpressTech = tech.HyPPI
			c.ExpressHops = 3
			c.ExpressBothDims = both
			net := topology.MustBuild(c)
			tab := routing.MustBuild(net, routing.MonotoneExpress)
			tm := traffic.MustSoteriou(net, o.Traffic)
			res, err := analytic.Evaluate(net, tab, tm, params)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		r1 := eval(false)
		r2 := eval(true)
		clear1, clear2 = r1.CLEAR, r2.CLEAR
		lat1, lat2 = r1.AvgLatencyClks, r2.AvgLatencyClks
	}
	b.ReportMetric(clear1, "CLEAR_1D")
	b.ReportMetric(clear2, "CLEAR_2D")
	b.ReportMetric(lat1, "latency_1D_clks")
	b.ReportMetric(lat2, "latency_2D_clks")
}

// BenchmarkTopologyKinds runs one cycle-accurate sweep point (uniform
// traffic at 0.05 flits/cycle on an 8×8 grid) per registered topology
// kind, guarding the registry's build → route → simulate paths and
// reporting each fabric's zero-load-ish latency side by side.
func BenchmarkTopologyKinds(b *testing.B) {
	for _, kind := range topology.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			c := topology.DefaultConfig()
			c.Kind = kind
			c.Width, c.Height = 8, 8
			net, err := topology.Build(c)
			if err != nil {
				b.Fatal(err)
			}
			tab := routing.MustBuild(net, routing.MonotoneExpress)
			uniform, err := traffic.Lookup("uniform")
			if err != nil {
				b.Fatal(err)
			}
			tm, err := uniform.Generate(net, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: 2000, Seed: 7}
			var lat float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts, err := noc.LoadLatencyCurve(net, tab, tm, []float64{0.05}, w, noc.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				lat = pts[0].AvgLatencyClks
			}
			b.ReportMetric(lat, "latency_r0.05_clks")
		})
	}
}

// BenchmarkExtensionLoadLatency sweeps offered load through the
// cycle-accurate simulator on an 8×8 express mesh — the classic saturation
// curve, reported as latency at low/mid load.
func BenchmarkExtensionLoadLatency(b *testing.B) {
	c := topology.DefaultConfig()
	c.Width, c.Height = 8, 8
	c.ExpressTech = tech.HyPPI
	c.ExpressHops = 3
	net := topology.MustBuild(c)
	tab := routing.MustBuild(net, routing.MonotoneExpress)
	base := traffic.Uniform(net, 0.1)
	w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: 3000, Seed: 11}
	var low, mid float64
	for i := 0; i < b.N; i++ {
		pts, err := noc.LoadLatencyCurve(net, tab, base, []float64{0.05, 0.35}, w, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		low, mid = pts[0].AvgLatencyClks, pts[1].AvgLatencyClks
	}
	b.ReportMetric(low, "latency_r0.05_clks")
	b.ReportMetric(mid, "latency_r0.35_clks")
}

// BenchmarkServeThroughput measures the simulation-as-a-service layer end
// to end: a fresh engine per iteration answers the standard 120-query
// mixed workload (12 distinct queries cycled, so cold evaluation plus
// cache/dedup serving), reporting the sustained rate and hit share — the
// quantities the serve-smoke CI gate bounds.
func BenchmarkServeThroughput(b *testing.B) {
	var qps, hitPct float64
	for i := 0; i < b.N; i++ {
		eng := serve.NewEngine(serve.Config{Workers: runtime.GOMAXPROCS(0)})
		rep, err := loadtest.Run(context.Background(), eng, loadtest.Config{Queries: 120, Clients: 8})
		eng.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 {
			b.Fatalf("%d queries failed: %+v", rep.Failed, rep)
		}
		qps, hitPct = rep.QPS, 100*rep.HitRate
	}
	b.ReportMetric(qps, "queries/s")
	b.ReportMetric(hitPct, "hit_%")
}

// BenchmarkTaskGraphMakespan measures the closed-loop task-graph layer
// end to end: the ring-allreduce and MoE all-to-all operator graphs
// replayed with dependency-gated injection on the paper's 8×8
// electronic + HyPPI express@5 hybrid, reporting each graph's end-to-end
// makespan and its stretch over the contention-free critical-path bound
// (the congestion-feedback figure of merit; ring-allreduce is
// contention-free on the ring, MoE is not).
func BenchmarkTaskGraphMakespan(b *testing.B) {
	gens, err := taskgraph.ParseGenerators("ring-allreduce,moe-alltoall")
	if err != nil {
		b.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	sc := core.DefaultTaskGraphSweep()
	points := []core.DesignPoint{{Base: tech.Electronic, Express: tech.HyPPI, Hops: 5}}
	var res []core.TaskGraphResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = core.TaskGraphSweep(context.Background(), points, gens, sc, o, runner.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res[0].MakespanClks), "allreduce_makespan_clks")
	b.ReportMetric(float64(res[1].MakespanClks), "moe_makespan_clks")
	b.ReportMetric(res[1].Stretch, "moe_stretch_x")
}

// BenchmarkFaultedSweep measures the fault and variation layer end to
// end: one mesh + HyPPI-express cell climbs a fault-rate ladder under the
// MODetector device variant — seed-derived failure schedules, adaptive
// reroute on the masked fabric, BER-driven retransmission under thermal
// drift, energy priced with trimming overhead. The ladder's rate-0 point
// runs the identical kernel with the fault profile disarmed, so the
// benchmark also tracks the zero-fault path's overhead (it must stay
// bit-identical to a run without the fault layer; see
// TestFaultSweepZeroFaultDifferential).
func BenchmarkFaultedSweep(b *testing.B) {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4
	points := []core.DesignPoint{{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3}}
	pats, err := traffic.ParsePatterns("uniform")
	if err != nil {
		b.Fatal(err)
	}
	sc := core.DefaultFaultSweep()
	sc.Rates = []float64{0, 0.15, 0.3}
	sc.Epochs = 3
	sc.Workload.Cycles = 500
	sc.NoC.MaxCycles = 50000
	var avail, clearDeg float64
	for i := 0; i < b.N; i++ {
		res, err := core.FaultSweep(context.Background(), []topology.Kind{topology.Mesh},
			points, []string{dsent.VariantMODetector}, pats, sc, o, runner.Config{})
		if err != nil {
			b.Fatal(err)
		}
		worst := res[0].Points[len(res[0].Points)-1]
		avail, clearDeg = worst.Availability, worst.CLEARDegradation
	}
	b.ReportMetric(avail, "avail_r0.3")
	b.ReportMetric(clearDeg, "clear_deg_r0.3")
}
