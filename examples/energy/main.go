// Energy compares latency–energy Pareto fronts measured by the
// activity-based energy subsystem: the plain electronic mesh against two
// express hybrids — electronic express links (cheap wiring, linear energy
// with distance) and HyPPI express links (the paper's contribution,
// distance-flat optical energy) — on the 8×8 cycle-accurate scale.
//
// The point: the paper's headline is that HyPPI wins on fJ/bit *and*
// CLEAR, but its Table V energy comes from amortized per-flit figures at
// one load point. Measuring instead — dynamic energy from counted
// flit-hops, buffer accesses, crossbar passes and E-O/O-E conversions,
// plus static power integrated over the simulated cycles — lets the
// trade-off surface speak for itself: at every offered load each design
// lands somewhere on the (latency, fJ/bit) plane, and the Pareto frontier
// of each traffic pattern names the designs worth building.
//
// Run with:
//
//	go run ./examples/energy
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	// The two express hop lengths bracket the Fig. 3 crossover: at 3 hops
	// (3 mm links) electronic wires still compete; at 7 hops (7 mm
	// row-closure rings) the distance-proportional wire energy has lost
	// to HyPPI's distance-flat conversion cost.
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}, // plain electronic mesh
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 3}, // hybrid, electronic express
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},      // hybrid, HyPPI express
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 7},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 7},
	}
	pats, err := traffic.ParsePatterns("uniform,tornado")
	if err != nil {
		log.Fatal(err)
	}
	sc := core.DefaultEnergySweep()
	results, err := core.EnergySweep(context.Background(), []topology.Kind{topology.Mesh},
		points, pats, sc, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("8×8 mesh, measured latency–energy sweep: electronic vs hybrid vs HyPPI express")
	fmt.Printf("offered-load ladder: %v flits/cycle\n", sc.Rates)
	fmt.Println("fJ/bit = activity energy + static power integrated over the run; '*' = Pareto front")
	fmt.Println()
	fmt.Print(report.EnergyTable(results))

	fmt.Println("\nPareto frontier per pattern (ascending latency)")
	fmt.Print(report.ParetoTable(results))

	// Who owns the frontier? Count frontier samples per design point per
	// pattern — the one-number summary of the Pareto comparison.
	fmt.Println("\nfrontier samples owned per design point:")
	type key struct {
		pattern string
		label   string
	}
	owned := map[key]int{}
	total := map[string]int{}
	for _, r := range results {
		for _, p := range r.Points {
			if p.Pareto {
				owned[key{r.Pattern, r.PointLabel()}]++
				total[r.Pattern]++
			}
		}
	}
	for _, pat := range pats {
		fmt.Printf("  %s:\n", pat.Name())
		for _, r := range results {
			if r.Pattern != pat.Name() {
				continue
			}
			n := owned[key{r.Pattern, r.PointLabel()}]
			fmt.Printf("    %-40s %d/%d\n", r.PointLabel(), n, total[r.Pattern])
		}
	}

	// The energy story behind the frontier: where does each design spend
	// its dynamic energy at a common mid-ladder load point? Pick the
	// drained rate nearest 0.1 flits/cycle rather than assuming the
	// default ladder contains it exactly.
	const midRate = 0.1
	pick := func(pts []core.EnergyPoint) *core.EnergyPoint {
		var best *core.EnergyPoint
		for i := range pts {
			p := &pts[i]
			if p.Saturated {
				continue
			}
			if best == nil || abs(p.Rate-midRate) < abs(best.Rate-midRate) {
				best = p
			}
		}
		return best
	}
	fmt.Printf("\ndynamic energy split near %v flits/cycle (uniform):\n", midRate)
	for _, r := range results {
		if r.Pattern != "uniform" {
			continue
		}
		if p := pick(r.Points); p != nil {
			d := p.Run.Dynamic
			fmt.Printf("  %-40s links %s (E %s, HyPPI %s)  buffers %s  xbar %s  E/O+O/E %s\n",
				r.PointLabel(),
				core.FormatEnergy(d.WireJ+d.ModulatorJ+d.SerdesJ+d.ReceiverJ),
				core.FormatEnergy(d.LinkJ[tech.Electronic]),
				core.FormatEnergy(d.LinkJ[tech.HyPPI]),
				core.FormatEnergy(d.BufferJ),
				core.FormatEnergy(d.CrossbarJ),
				core.FormatEnergy(d.ModulatorJ+d.ReceiverJ))
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
