// Collectives replays closed-loop operator graphs — reduce and broadcast
// trees, ring and tree allreduce, attention all-gather, MoE all-to-all
// and pipeline microbatches — on the paper's 8×8 grid and asks the
// question the open-loop sweeps cannot: how much sooner does the
// *application* finish on a hybrid fabric?
//
// Open-loop traffic measures per-packet latency at a fixed offered load;
// a real collective is a dependency graph whose next message waits for
// the previous one to land, so congestion compounds along the critical
// path. Here every message injects only when its predecessors' tails
// eject, the figure of merit is the end-to-end makespan, and each cell
// is scored against its contention-free critical-path bound (stretch =
// makespan/bound; 1.00 means the network never delayed the schedule).
//
// The comparison: the plain electronic mesh, an all-electronic express
// hybrid (same wiring, no photonics), and the paper's HyPPI express
// hybrids at hops = 3 and the row-closing hops = 7.
//
// Run with:
//
//	go run ./examples/collectives
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/taskgraph"
	"repro/internal/tech"
)

func main() {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	gens, err := taskgraph.ParseGenerators("all")
	if err != nil {
		log.Fatal(err)
	}
	sc := core.DefaultTaskGraphSweep()

	// The contenders: plain mesh, an electronic express control (is it
	// the shortcuts or the photonics?), and two HyPPI hybrids.
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 3},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 7},
	}
	results, err := core.TaskGraphSweep(context.Background(), points, gens, sc, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("8×8 closed-loop collectives, payload %d flits, compute %d clks, %d microbatches\n",
		sc.Gen.SizeFlits, sc.Gen.ComputeClks, sc.Gen.Microbatches)
	fmt.Println("(makespan = cycle the last tail ejects; bound = contention-free critical path)")
	fmt.Print(report.TaskGraphTable(results))

	// Headline: application-level speedup over the mesh, per graph. This
	// is the closed-loop analog of the paper's Fig. 6 latency ratios —
	// makespan folds congestion feedback along each graph's critical
	// path, so it can move more (or less) than per-packet latency does.
	mesh := map[string]core.TaskGraphResult{}
	for _, r := range results {
		if r.Point == points[0] {
			mesh[r.Graph] = r
		}
	}
	fmt.Println("\nmakespan speedup over the electronic mesh:")
	fmt.Printf("%-16s %-12s %-12s %-12s\n", "graph", "elec@3", "HyPPI@3", "HyPPI@7")
	for _, gen := range gens {
		base := mesh[gen.Name()]
		fmt.Printf("%-16s", gen.Name())
		for _, p := range points[1:] {
			for _, r := range results {
				if r.Point == p && r.Graph == gen.Name() {
					fmt.Printf(" %-12s", fmt.Sprintf("%.2fx", float64(base.MakespanClks)/float64(r.MakespanClks)))
				}
			}
		}
		fmt.Println()
	}
}
