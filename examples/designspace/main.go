// Designspace walks the full Fig. 5 grid — base mesh ∈ {Electronic,
// Photonic, HyPPI} × express ∈ {plain, Electronic, Photonic, HyPPI} ×
// hops ∈ {3, 5, 15} — and prints CLEAR with its four ingredients for every
// point, highlighting the paper's two findings: the best-CLEAR network is a
// HyPPI base mesh, while the best-latency network is an electronic base
// mesh with HyPPI express links.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/runner"
)

func main() {
	o := core.DefaultOptions()
	// The grid is a batch of independent jobs: walk it on a GOMAXPROCS
	// worker pool. Results are identical to a serial sweep.
	results, err := core.ExploreContext(context.Background(), core.DefaultDesignSpace(), o,
		runner.Config{Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d design points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}})
	if err != nil {
		log.Fatal(err)
	}

	sort.SliceStable(results, func(i, j int) bool {
		return results[i].CLEAR > results[j].CLEAR
	})

	fmt.Println("design points ranked by CLEAR (best first)")
	fmt.Printf("%-44s %-9s %-9s %-9s %-11s %-7s\n",
		"network", "CLEAR", "lat(clk)", "power(W)", "area", "R")
	for _, r := range results {
		fmt.Printf("%-44s %-9.4f %-9.1f %-9.3f %-11s %-7.3f\n",
			r.Point, r.CLEAR, r.AvgLatencyClks, r.PowerW, core.FormatArea(r.AreaM2), r.R)
	}

	best := results[0]
	fmt.Printf("\nbest CLEAR:   %s (%.4f)\n", best.Point, best.CLEAR)

	sort.SliceStable(results, func(i, j int) bool {
		return results[i].AvgLatencyClks < results[j].AvgLatencyClks
	})
	fmt.Printf("best latency: %s (%.1f clks)\n", results[0].Point, results[0].AvgLatencyClks)
	fmt.Println("\npaper: HyPPI base mesh wins CLEAR; an electronic base with HyPPI")
	fmt.Println("express links is the latency-first choice with minimal power/area cost.")
}
