// Npblatency reproduces a reduced-scale Fig. 6: it synthesizes the four NAS
// Parallel Benchmark traces (FT, CG, MG, LU), replays each through the
// cycle-accurate simulator on the electronic mesh and its express-augmented
// hybrids, and reports average packet latency and the Table-V-style dynamic
// energy.
//
// Run with (about a minute at the default 1/32 scale):
//
//	go run ./examples/npblatency
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/npb"
	"repro/internal/tech"
)

func main() {
	o := core.DefaultOptions()
	hops := []int{0, 3, 5, 15}

	fmt.Println("Fig. 6 (reduced scale) — avg packet latency in clks, HyPPI express")
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s %s\n",
		"kernel", "mesh", "hops=3", "hops=5", "hops=15", "best")
	for _, k := range npb.Kernels {
		cfg := npb.DefaultConfig(k)
		cfg.Scale = 1.0 / 32
		if k == npb.FT {
			cfg.Iterations = 1
		}
		lat := make([]float64, len(hops))
		for i, h := range hops {
			point := core.DesignPoint{Base: tech.Electronic, Express: tech.HyPPI, Hops: h}
			res, err := core.RunTraceExperiment(cfg, point, o, noc.DefaultConfig())
			if err != nil {
				log.Fatalf("%v hops=%d: %v", k, h, err)
			}
			lat[i] = res.AvgLatencyClks
		}
		bestIdx := 0
		for i := range lat {
			if lat[i] < lat[bestIdx] {
				bestIdx = i
			}
		}
		speedup := lat[0] / lat[bestIdx]
		fmt.Printf("%-8s %-10.2f %-10.2f %-10.2f %-10.2f %.2fx @hops=%d\n",
			k, lat[0], lat[1], lat[2], lat[3], speedup, hops[bestIdx])
	}
	fmt.Println("\npaper shapes: CG gains most at hops=3 (1.25x), MG from long hops")
	fmt.Println("(1.64x @15), FT from all types (1.3x @15), LU is 1-hop and flat.")
}
