// Reliability demonstrates the fault and variation layer: how the HyPPI
// hybrids of the paper hold up when links fail, when optical devices
// corrupt flits, and when thermal drift raises the bit-error rate under
// load.
//
// Each cell of the sweep — (design point, device variant) on a 4×4 mesh —
// climbs a per-link fault-rate ladder. At every rate a seed-derived
// schedule takes links down (permanently or as transient flaps), routing
// is rebuilt on the surviving fabric, and the cycle-accurate kernel runs
// with the variant's bit-error floor scaled by the thermal drift the
// previous epoch's traffic accumulated. Corrupted flits are NACKed and
// retransmitted; every retried traversal is counted and priced, so the
// fJ/bit column carries the reliability overhead, not just the headline
// energy.
//
// Two device variants ride along with the stock HyPPI link: the baseline
// registry entry (error-free devices) and the MODetector dual-function
// modulator-detector, which trades a nonzero error floor and higher laser
// power for cheaper modulation and no ring trimming.
//
// The outputs to read: availability (fraction of (src,dst) pairs still
// connected), explicit loss accounting (unroutable vs dropped — nothing
// disappears silently), retransmission counts, and CLEAR degradation
// relative to each cell's healthy point.
//
// Run with:
//
//	go run ./examples/reliability
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dsent"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 4, 4

	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}, // plain electronic mesh
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},      // hybrid, HyPPI express
	}
	variants := []string{dsent.VariantBaseline, dsent.VariantMODetector}
	pats, err := traffic.ParsePatterns("uniform")
	if err != nil {
		log.Fatal(err)
	}

	// A short, steep ladder: the top rate is harsh enough to partition the
	// 4×4 mesh, so the availability and unroutable columns actually move.
	sc := core.DefaultFaultSweep()
	sc.Rates = []float64{0, 0.05, 0.15, 0.3}
	sc.Epochs = 3
	sc.Workload.Cycles = 500
	sc.NoC.MaxCycles = 50000
	// An aggressive thermal environment: heating and BER gain cranked far
	// above the defaults so the MODetector's error floor — a few 1e-4 per
	// traversal nominally — produces visible retransmissions within this
	// short demo instead of needing millions of flit-hops.
	sc.Thermal.HeatPerUtil = 100
	sc.Thermal.BERGainPerDrift = 100

	results, err := core.FaultSweep(context.Background(), []topology.Kind{topology.Mesh},
		points, variants, pats, sc, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("4×4 mesh reliability sweep: plain electronic vs HyPPI express@3,")
	fmt.Println("baseline devices vs the MODetector modulator-detector variant")
	fmt.Printf("fault-rate ladder %v, %d epochs of %d cycles each\n",
		sc.Rates, sc.Epochs, sc.Workload.Cycles)
	fmt.Println()
	fmt.Print(report.FaultTable(results))

	// The one-number summaries: how much connectivity and CLEAR survive
	// the top of the ladder, and what delivery guarantee held throughout.
	fmt.Printf("\nat fault rate %v:\n", sc.Rates[len(sc.Rates)-1])
	for _, r := range results {
		worst := r.Points[len(r.Points)-1]
		var injected, delivered, dropped, retx int64
		for _, p := range r.Points {
			injected += p.PacketsInjected
			delivered += p.PacketsDelivered
			dropped += p.PacketsDropped
			retx += p.Retransmits
		}
		fmt.Printf("  %-46s avail %.3f  CLEAR× %.3f  (ladder total: %d injected = %d delivered + %d dropped, %d retx)\n",
			r.PointLabel(), worst.Availability, worst.CLEARDegradation,
			injected, delivered, dropped, retx)
		if delivered+dropped != injected {
			log.Fatalf("accounting broken: %d injected, %d delivered, %d dropped",
				injected, delivered, dropped)
		}
	}
	fmt.Println("\nevery injected packet is accounted for: delivered, or dropped explicitly")
	fmt.Println("(unroutable pairs are refused at injection — the offered load an operator would shed)")
}
