// Loadlatency sweeps offered load through the cycle-accurate simulator and
// prints the classic load-latency saturation curve for the plain electronic
// mesh versus the HyPPI-express hybrid — showing that express links don't
// just cut zero-load latency, they push the saturation point out (more
// capability C, lower utilization growth R, in CLEAR terms).
//
// Run with:
//
//	go run ./examples/loadlatency
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	rates := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	w := noc.BernoulliWorkload{SizeFlits: 1, Cycles: 5000, Seed: 13}
	cfg := noc.DefaultConfig()
	cfg.MaxCycles = 200000

	// Both curves, and every rate within a curve, are independent
	// simulations: run the two topologies through the worker pool, and
	// let LoadLatencyCurveContext fan the rates out on its own pool.
	curves, err := runner.Map(context.Background(), 2, runner.Config{},
		func(ctx context.Context, i int) ([]noc.LoadPoint, error) {
			hops := []int{0, 3}[i]
			c := topology.DefaultConfig()
			c.Width, c.Height = 8, 8
			c.ExpressTech = tech.HyPPI
			c.ExpressHops = hops
			net := topology.MustBuild(c)
			tab := routing.MustBuild(net, routing.MonotoneExpress)
			base := traffic.Uniform(net, 0.1)
			return noc.LoadLatencyCurveContext(ctx, net, tab, base, rates, w, cfg,
				runner.Config{}, noc.NewSimPool())
		})
	if err != nil {
		log.Fatal(err)
	}
	mesh, express := curves[0], curves[1]

	tbl := stats.NewTable("rate", "mesh avg", "mesh p99", "express avg", "express p99")
	cell := func(p noc.LoadPoint, q bool) string {
		if p.Saturated {
			return "saturated"
		}
		if q {
			return fmt.Sprintf("%.1f", p.P99LatencyClks)
		}
		return fmt.Sprintf("%.1f", p.AvgLatencyClks)
	}
	for i, r := range rates {
		tbl.AddRow(fmt.Sprintf("%.2f", r),
			cell(mesh[i], false), cell(mesh[i], true),
			cell(express[i], false), cell(express[i], true))
	}
	fmt.Println("8×8 uniform traffic, 1-flit packets (latencies in clks)")
	fmt.Print(tbl)
	fmt.Println("\nexpress links keep the curve flat deeper into the load range —")
	fmt.Println("the simulator-level view of CLEAR's C (capability) and R terms.")
}
