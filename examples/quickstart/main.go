// Quickstart: build the paper's two headline networks — a plain 16×16
// electronic mesh and the same mesh augmented with HyPPI express links at
// 3 hops — evaluate both with the CLEAR figure of merit, and inspect a
// single HyPPI link along the way.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/tech"
	"repro/internal/units"
)

func main() {
	// 1. A bare HyPPI link at the paper's 1 mm core spacing.
	m := link.MustModel(tech.HyPPI)
	met := m.Eval(1 * units.Millimetre)
	fmt.Printf("bare HyPPI link @ 1 mm: %s, %s, %s, CLEAR %.3g\n",
		units.FormatSI(met.DataRateBps, "b/s"),
		units.FormatSI(met.LatencyS, "s"),
		units.FormatSI(met.EnergyPerBitJ, "J/bit"),
		met.CLEAR())

	// 2. The two headline networks under the paper's synthetic traffic
	// (Soteriou model, p=0.02, σ=0.4, peak injection 0.1 flits/cycle).
	o := core.DefaultOptions()
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	results, err := core.Explore(points, o)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("\n%s\n", r.Point)
		fmt.Printf("  capability C   %.2f Gb/s per node\n", r.CapabilityGbpsPerNode)
		fmt.Printf("  avg latency    %.1f clks\n", r.AvgLatencyClks)
		fmt.Printf("  power          %.3f W (static %.3f + dynamic %.3f)\n",
			r.PowerW, r.StaticW, r.DynamicW)
		fmt.Printf("  area           %s\n", core.FormatArea(r.AreaM2))
		fmt.Printf("  R = dU/dr      %.3f\n", r.R)
		fmt.Printf("  CLEAR          %.4f\n", r.CLEAR)
	}
	fmt.Printf("\nCLEAR improvement from HyPPI express links: %.2fx (paper: up to 1.8x)\n",
		results[1].CLEAR/results[0].CLEAR)
}
