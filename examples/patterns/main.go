// Patterns sweeps every registry traffic pattern — uniform, the classic
// permutations (transpose, bit-complement, bit-reversal, shuffle,
// tornado), nearest-neighbor and the center hotspot — through the
// cycle-accurate simulator on the paper's mesh scaled to 8×8, comparing
// the plain electronic mesh against the HyPPI-express hybrid.
//
// The point: the paper evaluates HyPPI under statistically averaged
// traffic, but express links earn (or lose) their keep under spatial
// structure. Tornado and transpose concentrate flow along rows — exactly
// where the horizontal express links live — while nearest-neighbor gives
// them nothing to do. The per-pattern saturation throughput (latency-knee
// rule, see noc.DetectSaturation) makes that visible in one table.
//
// Run with:
//
//	go run ./examples/patterns
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/traffic"
)

func main() {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},
	}
	sc := core.DefaultPatternSweep()
	results, err := core.PatternSweep(context.Background(), points,
		traffic.Patterns(), sc, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("8×8 mesh, every registry pattern, electronic vs + HyPPI express@3")
	fmt.Printf("offered-load ladder: %v flits/cycle\n\n", sc.Rates)
	fmt.Print(report.SaturationTable(results))

	// Highlight the hybrid's saturation gain per pattern.
	fmt.Println("\nsaturation gain from HyPPI express links:")
	half := len(results) / 2
	for i := 0; i < half; i++ {
		mesh, hybrid := results[i], results[half+i]
		switch {
		case mesh.AtFloor || hybrid.AtFloor:
			// A knee at the sweep floor is a bound, not a measurement:
			// the ratio would overstate (or understate) the gain.
			fmt.Printf("  %-10s saturates at or below the sweep floor — gain not measurable in range\n",
				mesh.Pattern)
		case mesh.Saturates && hybrid.Saturates:
			fmt.Printf("  %-10s %.2fx (%.3g → %.3g flits/cycle)\n", mesh.Pattern,
				hybrid.SaturationRate/mesh.SaturationRate,
				mesh.SaturationRate, hybrid.SaturationRate)
		case mesh.Saturates:
			fmt.Printf("  %-10s mesh saturates at %.3g, hybrid never does in range\n",
				mesh.Pattern, mesh.SaturationRate)
		case hybrid.Saturates:
			fmt.Printf("  %-10s hybrid saturates at %.3g but the mesh never does — express links hurt\n",
				mesh.Pattern, hybrid.SaturationRate)
		default:
			fmt.Printf("  %-10s neither saturates in the swept range\n", mesh.Pattern)
		}
	}
}
