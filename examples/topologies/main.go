// Topologies compares every registered topology kind — the paper's mesh,
// the torus its hops = W−1 configuration approximates, the concentrated
// mesh and the flattened butterfly — on one 8×8 grid, first analytically
// (CLEAR and its ingredients under Soteriou traffic), then with the
// cycle-accurate simulator under uniform and tornado loads.
//
// The point: the paper buys its CLEAR gains by adding express channels to
// a mesh, but the same silicon budget could buy a different fabric
// outright. The torus removes the mesh's edge asymmetry for one wrap
// channel per line; the flattened butterfly spends quadratically more
// wiring and router radix to flatten every route to ≤ 2 hops; the
// concentrated mesh spends router radix to shrink the grid. The kind
// registry makes those head-to-head comparisons one flag (or one slice)
// wide.
//
// Run with:
//
//	go run ./examples/topologies
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8
	kinds := topology.Kinds()

	// Analytic pass: plain electronic and HyPPI fabrics per kind.
	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0},
		{Base: tech.HyPPI, Express: tech.HyPPI, Hops: 0},
	}
	rows, err := core.ExploreKinds(context.Background(), kinds, points, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("8×8 plain fabrics, Soteriou traffic — CLEAR and ingredients per kind")
	fmt.Print(report.KindComparisonTable(rows))
	for _, s := range topology.KindSpecs() {
		fmt.Printf("  %-6s %s\n         deadlock: %s\n", s.Name, s.Description, s.Deadlock)
	}

	// Cycle-accurate pass: the topology × pattern × load matrix under the
	// benign (uniform) and adversarial (tornado) registry patterns.
	pats, err := traffic.ParsePatterns("uniform,tornado")
	if err != nil {
		log.Fatal(err)
	}
	sc := core.DefaultPatternSweep()
	results, err := core.TopologyPatternSweep(context.Background(), kinds, pats, sc, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncycle-accurate saturation, offered-load ladder %v flits/cycle\n\n", sc.Rates)
	fmt.Print(report.SaturationTable(results))

	// Headline: how much tornado headroom each fabric buys over the mesh.
	fmt.Println("\ntornado saturation vs mesh:")
	sat := map[topology.Kind]core.PatternSweepResult{}
	for _, r := range results {
		if r.Pattern == "tornado" {
			sat[r.Kind] = r
		}
	}
	mesh := sat[topology.Mesh]
	for _, k := range kinds {
		r := sat[k]
		switch {
		case !r.Saturates:
			fmt.Printf("  %-6s never saturates in range\n", k)
		case r.AtFloor || (mesh.Saturates && mesh.AtFloor):
			// A floor-bounded knee caps capacity from above only; a ratio
			// against it would overstate the fabric.
			fmt.Printf("  %-6s saturates at or below the sweep floor (≤%.3g)\n", k, r.SaturationRate)
		case mesh.Saturates:
			fmt.Printf("  %-6s %.2fx (%.3g → %.3g flits/cycle)\n",
				k, r.SaturationRate/mesh.SaturationRate, mesh.SaturationRate, r.SaturationRate)
		default:
			fmt.Printf("  %-6s saturates at %.3g\n", k, r.SaturationRate)
		}
	}
}
