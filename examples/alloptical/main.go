// Alloptical regenerates the Fig. 8 radar comparison: an electronic mesh vs
// a fully photonic NoC vs a fully HyPPI NoC, on the three cost axes latency,
// energy per bit and area — including the optimal assignment of mesh
// directions to optical router ports that keeps X-Y routes off the lossy
// switch paths.
//
// Run with:
//
//	go run ./examples/alloptical
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/optical"
	"repro/internal/units"
)

func main() {
	radar, err := core.AllOpticalRadar(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	print := func(name string, p optical.Projection) {
		fmt.Printf("%s\n", name)
		fmt.Printf("  energy    %s\n", units.FormatSI(p.EnergyPerBitJ, "J/bit"))
		fmt.Printf("  latency   %.1f clks\n", p.LatencyClks)
		fmt.Printf("  area      %s\n", core.FormatArea(p.AreaM2))
		if p.MeanPathLossDB > 0 {
			fmt.Printf("  path loss mean %.1f dB, worst %.1f dB\n",
				p.MeanPathLossDB, p.WorstPathLossDB)
			fmt.Printf("  port map  Local→%d E→%d W→%d N→%d S→%d\n",
				p.Assignment[optical.Local], p.Assignment[optical.East],
				p.Assignment[optical.West], p.Assignment[optical.North],
				p.Assignment[optical.South])
		}
		fmt.Println()
	}
	print("Electronic mesh", radar.Electronic)
	print("All-Photonic NoC", radar.Photonic)
	print("All-HyPPI NoC", radar.HyPPI)

	fmt.Printf("electronic/all-HyPPI energy ratio: %.0fx\n",
		radar.Electronic.EnergyPerBitJ/radar.HyPPI.EnergyPerBitJ)
	fmt.Printf("all-photonic/all-HyPPI area ratio: %.0fx\n",
		radar.Photonic.AreaM2/radar.HyPPI.AreaM2)
	if optical.TriangleBetter(radar.HyPPI, radar.Electronic) &&
		optical.TriangleBetter(radar.HyPPI, radar.Photonic) {
		fmt.Println("all-HyPPI encloses the smallest radar triangle — the paper's conclusion")
	}
}
