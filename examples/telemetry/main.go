// Telemetry demonstrates the observability layer: the same 8×8 sweep the
// other examples run, but instrumented — a deterministic sample of packets
// is traced hop by hop, and windowed probes record where and when the
// fabric actually worked.
//
// Three things to notice:
//
//   - Zero cost when off. The collector attaches through noc.Sim's
//     observer tap; the kernel's statistics are bit-identical with and
//     without it, so telemetry never contaminates a measurement.
//   - Deterministic sampling. Packet i is traced iff a pure hash of
//     (seed, i) lands under the sample rate — no RNG state, no dependence
//     on worker count. The same sweep traces the same packets every run.
//   - The probe census is the D3NOC sensor. The per-window link
//     utilization census printed below is exactly the sliding-window
//     traffic measurement a dynamically reconfigurable fabric would read
//     to decide where express links should go (see ROADMAP.md).
//
// The Chrome trace-event export (hyppi-sim -trace-out) turns the spans
// into a Perfetto-loadable timeline; here it is serialized to memory and
// sized, so the example stays file-free.
//
// Run with:
//
//	go run ./examples/telemetry
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tech"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func main() {
	o := core.DefaultOptions()
	o.Topology.Width, o.Topology.Height = 8, 8

	points := []core.DesignPoint{
		{Base: tech.Electronic, Express: tech.Electronic, Hops: 0}, // plain mesh
		{Base: tech.Electronic, Express: tech.HyPPI, Hops: 3},      // the paper's short express
	}
	patterns, err := traffic.ParsePatterns("uniform,tornado")
	if err != nil {
		log.Fatal(err)
	}

	sc := core.DefaultTelemetrySweep()
	sc.Workload.Cycles = 2000
	results, err := core.TelemetrySweep(context.Background(), points, patterns,
		sc, o, runner.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("8×8 telemetry sweep @ rate %.3g: %.0f%% packet sampling, %d-cycle probe windows\n",
		sc.Rate, sc.Telemetry.SampleRate*100, sc.Telemetry.ProbeWindowClks)

	for _, r := range results {
		fmt.Printf("\n=== %s ===\n", r.Label())
		fmt.Printf("packets %d, sampled %d — identical every run: the sample is a pure\n"+
			"function of (seed, packet index), so tracing never breaks determinism\n",
			r.Trace.TotalPackets, r.Trace.SampledPackets)
		fmt.Print(report.SpanTable(r.Trace, 8))

		p := r.Probes
		fmt.Printf("\nwindowed census (%d windows of %d clks):\n", p.Windows(), p.WindowClks())
		fmt.Print(report.ProbeTimeline(p))

		net, _, err := o.NetworkAndTable(r.Point)
		if err != nil {
			log.Fatal(err)
		}
		if peak := report.PeakWindow(p); peak >= 0 {
			fmt.Print(report.ProbeOccupancyGrid(p, net, peak))
			fmt.Print(report.ProbeLinkHeatmap(p, net, 10))
		}
	}

	// The Perfetto export, sized rather than written: hyppi-sim's
	// -trace-out flag writes this same JSON to a file.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, core.ChromeProcesses(results)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChrome trace-event export: %d bytes for %d cells "+
		"(hyppi-sim -pattern uniform -trace-out trace.json writes it to disk)\n",
		buf.Len(), len(results))
}
