# Development targets for the HyPPI NoC reproduction.
#
#   make ci        — the full gate, fast checks first: vet, short, race-short, full tests
#   make test      — full (non-short) test suite
#   make short     — fast feedback loop (seconds, scaled-down workloads)
#   make race      — race-enabled short suite (the concurrency gate)
#   make fmt-check — fail if any file is not gofmt-clean (CI's formatting gate)
#   make bench     — regenerate every paper table/figure as benchmarks
#   make golden    — rewrite internal/core/testdata/golden.json from HEAD

GO ?= go

.PHONY: ci vet test short race fmt-check bench golden

# Ordered so the cheapest gates fail first: vet (seconds), short
# (seconds), race-short (tens of seconds), then the full suite.
ci: vet short race test

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

golden:
	$(GO) test ./internal/core -run TestGolden -update
