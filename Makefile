# Development targets for the HyPPI NoC reproduction.
#
#   make ci            — the full gate, fast checks first: vet, short, race-short, full tests
#   make test          — full (non-short) test suite
#   make short         — fast feedback loop (seconds, scaled-down workloads)
#   make race          — race-enabled short suite (the concurrency gate)
#   make fmt-check     — fail if any file is not gofmt-clean (CI's formatting gate)
#   make bench         — regenerate every paper table/figure as benchmarks
#   make bench-compare — run the benchmarks and diff them against BENCH_baseline.txt
#   make golden        — rewrite internal/core/testdata/golden.json from HEAD
#   make golden-serve  — rewrite the internal/serve golden protocol files from HEAD
#   make examples-smoke — build and run every examples/ binary (output discarded)
#   make serve-smoke   — hyppi-serve selftest: sustained q/s + cache hit-rate gate

GO ?= go

# Where bench-compare writes the current run before diffing it against the
# pinned baseline.
BENCH_OUT ?= /tmp/hyppi-bench-current.txt

.PHONY: ci vet test short race fmt-check bench bench-compare golden golden-serve examples-smoke serve-smoke

# Ordered so the cheapest gates fail first: vet (seconds), short
# (seconds), race-short (tens of seconds), then the full suite.
ci: vet short race test

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# Full benchmark run diffed against the pinned baseline (benchstat-style,
# self-contained — see cmd/hyppi-benchcmp). Refresh the baseline after a
# deliberate perf change with: make bench > BENCH_baseline.txt
bench-compare:
	$(GO) test -bench=. -benchmem . > $(BENCH_OUT) || { cat $(BENCH_OUT); exit 1; }
	@cat $(BENCH_OUT)
	$(GO) run ./cmd/hyppi-benchcmp BENCH_baseline.txt $(BENCH_OUT)

golden:
	$(GO) test ./internal/core -run TestGolden -update

golden-serve:
	$(GO) test ./internal/serve -run TestGolden -update

# Every example is a standalone demo of one experiment family; running
# each to completion (output discarded, failures loud) keeps them from
# bit-rotting as the library underneath them moves.
examples-smoke:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d" > /dev/null; \
	done

# The serving gate: replay the built-in mixed workload through an
# in-process engine and fail under 50 q/s sustained or 50% cache hits
# (the 1-CPU CI container clears both with an order of magnitude to spare).
serve-smoke:
	$(GO) run ./cmd/hyppi-serve -selftest -queries 120 -clients 8 -min-qps 50 -min-hit 0.5
