# Development targets for the HyPPI NoC reproduction.
#
#   make ci      — the full gate: vet, race-enabled short tests, full tests
#   make test    — full (non-short) test suite
#   make short   — fast feedback loop (seconds, scaled-down workloads)
#   make race    — race-enabled short suite (the concurrency gate)
#   make bench   — regenerate every paper table/figure as benchmarks
#   make golden  — rewrite internal/core/testdata/golden.json from HEAD

GO ?= go

.PHONY: ci vet test short race bench golden

ci: vet race test

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

golden:
	$(GO) test ./internal/core -run TestGolden -update
