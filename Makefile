# Development targets for the HyPPI NoC reproduction.
#
#   make ci            — the full gate, fast checks first: vet, short, race-short, full tests
#   make test          — full (non-short) test suite
#   make short         — fast feedback loop (seconds, scaled-down workloads)
#   make race          — race-enabled short suite (the concurrency gate)
#   make fmt-check     — fail if any file is not gofmt-clean (CI's formatting gate)
#   make bench         — regenerate every paper table/figure as benchmarks
#   make bench-baseline — rewrite BENCH_baseline.txt from a -benchtime=1x run
#   make bench-compare — run the benchmarks once and diff them against
#                        BENCH_baseline.txt; allocs/op regressions fail,
#                        timings are informational (1x runs are noisy)
#   make scale-smoke   — the 64×64 scale gate: wall-clock and heap budgets
#                        on a 4096-node pattern sweep (see TestScaleSmoke)
#   make golden        — rewrite internal/core/testdata/golden.json from HEAD
#   make golden-serve  — rewrite the internal/serve golden protocol files from HEAD
#   make examples-smoke — build and run every examples/ binary (output discarded)
#   make serve-smoke   — hyppi-serve selftest: sustained q/s + cache hit-rate gate
#   make fault-smoke   — the reliability gate: fault-layer invariants plus
#                        the FaultSweep suite (zero-fault differential,
#                        worker-count determinism, variant BER coupling)
#   make taskgraph-smoke — the closed-loop workload gate: allreduce and MoE
#                        operator graphs on the 8×8 hybrid under a wall
#                        budget (see TestTaskGraphSmoke)
#   make telemetry-smoke — the observability gate: a traced 16×16 sweep
#                        whose Chrome trace export must parse and whose
#                        probe series must match the window math
#                        (see TestTelemetrySmoke)

GO ?= go

# Where bench-compare writes the current run before diffing it against the
# pinned baseline.
BENCH_OUT ?= /tmp/hyppi-bench-current.txt

.PHONY: ci vet test short race fmt-check bench bench-baseline bench-compare scale-smoke golden golden-serve examples-smoke serve-smoke fault-smoke taskgraph-smoke telemetry-smoke

# Ordered so the cheapest gates fail first: vet (seconds), short
# (seconds), race-short (tens of seconds), then the full suite.
ci: vet short race test

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# The pinned baseline is a -benchtime=1x run: timings from a single
# iteration are noise, but allocs/op is deterministic at 1x, which is what
# bench-compare and the CI bench-smoke job gate on. Refresh after a
# deliberate perf change with: make bench-baseline
bench-baseline:
	$(GO) test -bench=. -benchtime=1x -benchmem . > BENCH_baseline.txt
	@cat BENCH_baseline.txt

# One-iteration benchmark run diffed against the pinned baseline
# (benchstat-style, self-contained — see cmd/hyppi-benchcmp). allocs/op
# regressions beyond 1% fail (worker pools add a few allocs of scheduling
# jitter; a real regression is orders of magnitude larger); timings are
# informational. The JSON comparison lands in BENCH_scale.json for
# dashboards and CI artifacts.
bench-compare:
	$(GO) test -bench=. -benchtime=1x -benchmem . > $(BENCH_OUT) || { cat $(BENCH_OUT); exit 1; }
	@cat $(BENCH_OUT)
	$(GO) run ./cmd/hyppi-benchcmp -fail-allocs 1 -json BENCH_scale.json BENCH_baseline.txt $(BENCH_OUT)

# The 64×64 scale gate: a 4096-node uniform+tornado sweep must finish
# within TestScaleSmoke's wall-clock budget and O(n) heap ceiling, locking
# in algorithmic routing, streamed traffic and the cycle-skipping kernel.
scale-smoke:
	$(GO) test ./internal/core -run TestScaleSmoke -timeout 600s -v

golden:
	$(GO) test ./internal/core -run TestGolden -update

golden-serve:
	$(GO) test ./internal/serve -run TestGolden -update

# Every example is a standalone demo of one experiment family; running
# each to completion (output discarded, failures loud) keeps them from
# bit-rotting as the library underneath them moves.
examples-smoke:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d" > /dev/null; \
	done

# The serving gate: replay the built-in mixed workload through an
# in-process engine and fail under 50 q/s sustained or 50% cache hits
# (the 1-CPU CI container clears both with an order of magnitude to spare).
serve-smoke:
	$(GO) run ./cmd/hyppi-serve -selftest -queries 120 -clients 8 -min-qps 50 -min-hit 0.5

# The reliability gate: the fault layer's structural invariants
# (schedules, reroute, thermal) and the core.FaultSweep suite — shape,
# the zero-fault bit-identity differential, serial-vs-parallel
# determinism on the fault axis, and the device-variant BER coupling.
fault-smoke:
	$(GO) test ./internal/fault -timeout 300s -v
	$(GO) test ./internal/core -run TestFaultSweep -timeout 600s -v

# The closed-loop workload gate: the ring/tree-allreduce and MoE
# all-to-all operator graphs replayed with dependency-gated injection on
# the paper's 8×8 electronic+HyPPI hybrid — makespans must respect their
# contention-free critical-path bounds inside a CI-container wall budget.
taskgraph-smoke:
	$(GO) test ./internal/core -run TestTaskGraphSmoke -timeout 300s -v

# The observability gate: a traced 16×16 telemetry sweep — the Chrome
# trace-event export must parse as JSON with one Perfetto process per
# cell, and the probe series must obey the window math exactly
# (Cycles/W + 1 closed windows, no evictions at the smoke horizon).
telemetry-smoke:
	$(GO) test ./internal/telemetry -timeout 300s -v
	$(GO) test ./internal/core -run TestTelemetry -timeout 300s -v
